// Digits: the full application pipeline — train a float classifier on
// synthetic 16x16 digits, quantise it to crossbar-deployable ternary
// weights, compile it onto neurosynaptic cores, and serve the test set
// through a batched inference Pipeline (a pool of sessions, each its
// own chip over the shared mapping), reporting accuracy and energy per
// image.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/neurogo/neurogo"
)

func main() {
	const (
		trainN = 1500
		testN  = 300
		window = 16 // observation ticks per image
	)

	// 1. Synthetic data and offline float training.
	gen := neurogo.NewDigitGenerator(16, 0.03, 1, 42)
	xtr, ytr := gen.Batch(trainN)
	xte, yte := gen.Batch(testN)
	model, err := neurogo.TrainLinear(xtr, ytr, neurogo.NumDigitClasses,
		neurogo.TrainOptions{Epochs: 12, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("float baseline accuracy:   %.1f%%\n", model.Accuracy(xte, yte)*100)

	// 2. Ternary quantisation (the weights a crossbar can hold).
	tern := model.Ternarize(1.3)
	fmt.Printf("ternary direct accuracy:   %.1f%% (%.0f%% weights nonzero)\n",
		tern.Accuracy(xte, yte)*100, tern.NonZeroFraction()*100)

	// 3. Compile the spiking classifier.
	net := neurogo.NewNetwork()
	cls := neurogo.BuildClassifier(net, tern, "digits", neurogo.DefaultClassifierParams())
	mapping, err := neurogo.Compile(net, neurogo.CompileOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled onto %d cores (%dx%d grid)\n",
		mapping.Stats.UsedCores, mapping.Stats.GridWidth, mapping.Stats.GridHeight)

	// 4. Spiking inference through the serving pipeline: Bernoulli rate
	// code in, spike-count decode out, the whole test set fanned across
	// a pool of concurrent sessions.
	p, err := neurogo.NewPipeline(mapping,
		neurogo.WithEncoder(neurogo.NewBernoulliEncoder(0.5, 99)),
		neurogo.WithDecoder(neurogo.NewCounterDecoder(neurogo.NumDigitClasses)),
		neurogo.WithLineMapper(neurogo.TwinLines(cls.LinesFor)),
		neurogo.WithClassMapper(cls.ClassOf),
		neurogo.WithWindow(window),
		neurogo.WithDrain(10)) // decay gap flushing each presentation
	if err != nil {
		log.Fatal(err)
	}
	preds, err := p.ClassifyBatch(context.Background(), xte)
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for i, pred := range preds {
		if pred == yte[i] {
			hits++
		}
	}
	fmt.Printf("spiking chip accuracy:     %.1f%% (%d-tick window)\n",
		float64(hits)/float64(testN)*100, window)

	// 5. Energy: chip model vs a conventional machine, aggregated over
	// the whole session pool.
	usage := neurogo.PipelineUsageOf(p, true)
	neu := neurogo.DefaultEnergyCoefficients().Evaluate(usage)
	convUsage := usage
	convUsage.Cores = 1
	convUsage.Hops = 0
	conv := neurogo.ConventionalEnergyCoefficients().Evaluate(convUsage)
	fmt.Printf("energy per classification: %.1f nJ (chip) vs %.1f nJ (conventional, %.0fx)\n",
		neu.TotalPJ/float64(testN)*1e-3,
		conv.TotalPJ/float64(testN)*1e-3,
		conv.TotalPJ/neu.TotalPJ)
}
