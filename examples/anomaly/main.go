// Anomaly: always-on anomaly detection over a synthetic sensor trace.
// Each reading is population-coded into one of eight value bins and
// pushed through a hand-wired two-neuron network — a "normal band"
// neuron listening to the low bins and an "anomaly band" neuron
// listening to the top bins — served as an open-ended pipeline Stream.
// A DecayCounter windowed decoder (fixed-point exponential decay, so
// decisions are bit-identical across engines) argmaxes the two decayed
// evidence levels under a margin gate: it declares "normal" in steady
// state, flips to "anomaly" a few ticks into an excursion, and abstains
// during the crossover when the evidence is genuinely ambiguous.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/neurogo/neurogo"
)

func main() {
	const (
		bins           = 8   // population-code resolution over [0, 1]
		anomalyBin     = 6   // readings in bins 6..7 (>= 0.75) are suspect
		period         = 64  // baseline sine period in ticks
		burst          = 6   // anomaly excursion length in ticks
		minGap, maxGap = 40, 120
		noise          = 0.03
		ticks          = 6000
		recover        = 12 // ticks after a burst an anomaly call still credits it
		clsNormal      = 0
		clsAnomaly     = 1
	)

	// Two relay neurons over one population-coded input bank: each
	// fires one tick after any of its bins spikes.
	net := neurogo.NewNetwork()
	in := net.AddInputBank("sensor/in", bins, neurogo.SourceProps{Type: 0, Delay: 1})
	proto := neurogo.DefaultNeuron()
	proto.SynWeight[0] = 1
	proto.Threshold = 1
	proto.NegSaturate = true
	bands := net.AddPopulation("sensor/bands", 2, proto)
	for b := 0; b < bins; b++ {
		cls := clsNormal
		if b >= anomalyBin {
			cls = clsAnomaly
		}
		net.Connect(in.Line(b), bands.ID(cls))
	}
	net.MarkOutput(bands.ID(clsNormal))
	net.MarkOutput(bands.ID(clsAnomaly))
	mapping, err := neurogo.Compile(net, neurogo.CompileOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Decay shift 2: a spike's weight halves every ~3 ticks, so the
	// margin gate (2 spike units) is crossed about 5 ticks into an
	// excursion and released as quickly after it — the soft window that
	// trades detection latency against false alarms.
	dec := neurogo.NewDecayCounterDecoder(2, 2)
	dec.MinLevel = 1
	dec.MinMargin = 2
	p, err := neurogo.NewPipeline(mapping,
		neurogo.WithEncoder(neurogo.NewBernoulliEncoder(1, 99)),
		neurogo.WithDecoder(dec),
		neurogo.WithClassMapper(func(id neurogo.NeuronID) int { return int(id - bands.First) }))
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	fmt.Printf("anomaly detector: %d value bins -> 2 band neurons on %d cores\n",
		bins, mapping.Stats.UsedCores)
	fmt.Printf("trace: sine baseline (period %d), %d-tick excursions, gaps in [%d, %d] ticks\n\n",
		period, burst, minGap, maxGap)

	sensor := neurogo.NewSensorStream(period, burst, minGap, maxGap, noise, 5)
	st := p.NewSession().Stream(context.Background())
	decCh := st.Decisions() // subscribe before the first tick

	type span struct{ start, end int64 }
	var bursts []span
	frame := make([]float64, bins)
	start := time.Now()
	for t := int64(0); t < ticks; t++ {
		v, bad := sensor.Tick()
		bin := int(v * bins)
		if bin >= bins {
			bin = bins - 1
		}
		for i := range frame {
			frame[i] = 0
		}
		frame[bin] = 1
		if _, err := st.Push(frame); err != nil {
			log.Fatal(err)
		}
		if bad {
			if n := len(bursts); n > 0 && bursts[n-1].end == t-1 {
				bursts[n-1].end = t
			} else {
				bursts = append(bursts, span{t, t})
			}
		}
	}
	if _, err := st.Drain(); err != nil {
		log.Fatal(err)
	}
	dur := time.Since(start)

	var anomalyTicks []int64
	normalCalls, abstained := 0, int64(ticks)
	for d := range decCh {
		abstained--
		if d.Class == clsAnomaly {
			anomalyTicks = append(anomalyTicks, d.Tick)
		} else {
			normalCalls++
		}
	}

	// Credit each burst with its first anomaly call inside
	// [start, end+recover]; anomaly calls outside every window are
	// false alarms.
	detected, falseAlarms := 0, 0
	var latencySum int64
	ai := 0
	for _, b := range bursts {
		for ai < len(anomalyTicks) && anomalyTicks[ai] < b.start {
			falseAlarms++
			ai++
		}
		first := int64(-1)
		for ai < len(anomalyTicks) && anomalyTicks[ai] <= b.end+recover {
			if first < 0 {
				first = anomalyTicks[ai]
			}
			ai++
		}
		if first >= 0 {
			detected++
			latencySum += first - b.start
		}
	}
	falseAlarms += len(anomalyTicks) - ai

	fmt.Printf("served %d readings in %v (%.0f ticks/s)\n",
		ticks, dur.Round(time.Millisecond), float64(ticks)/dur.Seconds())
	fmt.Printf("bursts %d, detected %d, missed %d, false alarms %d\n",
		len(bursts), detected, len(bursts)-detected, falseAlarms)
	if detected > 0 {
		fmt.Printf("detection latency: mean %.1f ticks from excursion onset (burst %d ticks, decay half-life ~3)\n",
			float64(latencySum)/float64(detected), burst)
	}
	fmt.Printf("decisions: %d normal, %d anomaly, abstained %d of %d ticks (margin gate %.0f spike units)\n",
		normalCalls, len(anomalyTicks), abstained, int64(ticks), dec.MinMargin)
}
