// Patterns: spatio-temporal computing with axonal delays, served
// through pipeline streams. A delay line shifts spikes in time, and a
// pattern detector uses per-line delays to recognise a spike template —
// firing only when events arrive with the right relative timing, not
// merely the right lines. One session is reused across presentations:
// each Stream reopens it on pristine chip state.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/neurogo/neurogo"
)

func main() {
	ctx := context.Background()

	// ---- Part 1: a delay line ----
	net := neurogo.NewNetwork()
	dl := neurogo.BuildDelayLine(net, "line", []uint8{4, 6, 3})
	mapping, err := neurogo.Compile(net, neurogo.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := neurogo.NewPipeline(mapping)
	if err != nil {
		log.Fatal(err)
	}
	stream := p.NewSession().Stream(ctx)
	_ = stream.Inject(dl.In.First)
	for t := 0; t < 20; t++ {
		labels, _ := stream.Tick()
		for _, l := range labels {
			fmt.Printf("delay line output at tick %d (inject at 0, stages 4+6 deep)\n", l.Tick)
		}
	}

	// ---- Part 2: a spatio-temporal pattern detector ----
	pat := neurogo.NewPattern(16, 10, 5, 99)
	fmt.Printf("\ntemplate (5 events over %d ticks):\n", pat.Span)
	for _, ev := range pat.Events {
		fmt.Printf("  line %2d at tick %d\n", ev.Line, ev.Tick)
	}

	net2 := neurogo.NewNetwork()
	pd, err := neurogo.BuildPatternDetector(net2, pat, 5)
	if err != nil {
		log.Fatal(err)
	}
	mapping2, err := neurogo.Compile(net2, neurogo.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	p2, err := neurogo.NewPipeline(mapping2)
	if err != nil {
		log.Fatal(err)
	}
	session := p2.NewSession()

	present := func(name string, timing func(eventIdx int) int) {
		st := session.Stream(ctx) // reopen: session resets to power-on state
		fired := false
		for tick := 0; tick < 30; tick++ {
			for i, ev := range pat.Events {
				if timing(i) == tick {
					_ = st.Inject(pd.In.First + int32(ev.Line))
				}
			}
			labels, _ := st.Tick()
			if len(labels) > 0 {
				fired = true
			}
		}
		fmt.Printf("%-28s -> detector fired: %v\n", name, fired)
	}

	fmt.Println()
	present("exact template", func(i int) int { return pat.Events[i].Tick })
	present("all events simultaneous", func(int) int { return 0 })
	present("template reversed in time", func(i int) int { return pat.Span - pat.Events[i].Tick })
}
