// Behaviors: render the twenty-behaviour neuron gallery — the richness
// of the digital neuron model — as spike rasters with their parameter
// summaries.
package main

import (
	"fmt"
	"strings"

	"github.com/neurogo/neurogo"
)

func main() {
	for _, b := range neurogo.Gallery() {
		b := b
		tr := b.Run()
		fmt.Printf("%s\n  %s\n", b.Name, b.Description)
		window := b.Window
		if window > 96 {
			window = 96
		}
		fmt.Printf("  spikes: %d in %d ticks\n  ", len(tr.SpikeTimes), b.Window)
		raster := make([]byte, window)
		for i := range raster {
			raster[i] = '.'
		}
		for _, st := range tr.SpikeTimes {
			if st < window {
				raster[st] = '|'
			}
		}
		fmt.Printf("%s\n\n", string(raster))
	}
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("20 behaviours, one parameterised digital neuron each.")
}
