// Detector: multi-object detection on synthetic scenes. A grid of
// template-matching cells is compiled onto cores and served through a
// pipeline stream: every frame is presented as single-shot spikes and
// all cells report in parallel within a few ticks — the always-on
// sensory style the architecture targets.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/neurogo/neurogo"
)

const (
	cellsX, cellsY = 4, 4
	cellPix        = 7
	threshold      = 8
	frames         = 40
	settleTicks    = 6 // ticks per frame for cells to report
)

func main() {
	net := neurogo.NewNetwork()
	det := neurogo.BuildDetector(net, cellsX, cellsY, cellPix, threshold)
	mapping, err := neurogo.Compile(net, neurogo.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector: %dx%d cells on %d cores\n\n", cellsX, cellsY, mapping.Stats.UsedCores)

	// An open-ended stream: binary single-shot frames in, detection
	// labels out, chip state persisting across frames.
	p, err := neurogo.NewPipeline(mapping,
		neurogo.WithEncoder(neurogo.NewBinaryEncoder(0.5, 1)),
		neurogo.WithLineMapper(neurogo.TwinLines(det.LinesFor)),
		neurogo.WithClassMapper(det.CellOf))
	if err != nil {
		log.Fatal(err)
	}
	stream := p.NewSession().Stream(context.Background())
	scenes := neurogo.NewSceneGenerator(cellsX, cellsY, cellPix, 0.3, 0.02, 42)

	tp, fp, fn := 0, 0, 0
	var lastFrame []float64
	var lastFired, lastTruth []bool
	for f := 0; f < frames; f++ {
		pixels, truth := scenes.Frame()
		labels, err := stream.Present(pixels, settleTicks)
		if err != nil {
			log.Fatal(err)
		}
		fired := make([]bool, cellsX*cellsY)
		for _, l := range labels {
			if l.Class >= 0 {
				fired[l.Class] = true
			}
		}
		for c := range truth {
			switch {
			case fired[c] && truth[c]:
				tp++
			case fired[c] && !truth[c]:
				fp++
			case !fired[c] && truth[c]:
				fn++
			}
		}
		lastFrame, lastFired, lastTruth = pixels, fired, truth
	}

	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	fmt.Printf("over %d frames: precision %.3f, recall %.3f\n\n", frames, prec, rec)

	// Render the last frame and its detections.
	fmt.Println("last frame (# = pixel on), detections (X = fired, o = object truth):")
	w := cellsX * cellPix
	for y := 0; y < cellsY*cellPix; y++ {
		var row strings.Builder
		for x := 0; x < w; x++ {
			if lastFrame[y*w+x] > 0.5 {
				row.WriteByte('#')
			} else {
				row.WriteByte('.')
			}
		}
		fmt.Printf("  %s", row.String())
		if y < cellsY {
			var marks strings.Builder
			for cx := 0; cx < cellsX; cx++ {
				c := y*cellsX + cx
				switch {
				case lastFired[c] && lastTruth[c]:
					marks.WriteByte('X')
				case lastFired[c]:
					marks.WriteByte('!')
				case lastTruth[c]:
					marks.WriteByte('o')
				default:
					marks.WriteByte('.')
				}
			}
			fmt.Printf("   cells row %d: %s", y, marks.String())
		}
		fmt.Println()
	}
}
