// Command nshard hosts one tile shard of a distributed system: it
// loads a tiled-compiled mapping, builds the shard's chip fragment for
// partition coordinates (-shard of -shards), and serves the shard RPC
// protocol (gob over a unix socket or TCP) until killed. A
// system.Sharded client — pipeline.WithRemoteSystem, nsim -remote, or
// remote.DialSharded — drives N such processes in exchange windows (a
// window of ticks per RPC round-trip, lockstep when the window is 1)
// as one logical model, bit-identical to running the mapping in one
// process.
//
// Usage:
//
//	nsim -spec net.json -chips 2x2 -save-mapping net.nmap
//	nshard -mapping net.nmap -shards 2 -shard 0 -listen /tmp/shard0.sock &
//	nshard -mapping net.nmap -shards 2 -shard 1 -listen /tmp/shard1.sock &
//	nsim -spec net.json -chips 2x2 -remote /tmp/shard0.sock,/tmp/shard1.sock
//
// The mapping file must be byte-identical across the shards and the
// client — the connection handshake verifies its SHA-256 — and every
// process derives the same chips-per-shard partition from the
// (-shards, -shard) coordinates alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/remote"
	"github.com/neurogo/neurogo/internal/system"
)

func main() {
	var (
		listen  = flag.String("listen", "", "address to serve on: a unix socket path (contains '/') or host:port (required)")
		mapping = flag.String("mapping", "", "path to the tiled-compiled mapping file (see nsim -save-mapping; required)")
		shards  = flag.Int("shards", 1, "total shard count of the partition")
		shard   = flag.Int("shard", 0, "this process's shard index (0-based)")
		noPlan  = flag.Bool("noplan", false, "force the legacy scalar core path (disable precompiled integration plans)")
	)
	flag.Parse()
	if *listen == "" || *mapping == "" {
		fmt.Fprintln(os.Stderr, "nshard: -listen and -mapping are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*listen, *mapping, *shards, *shard, *noPlan); err != nil {
		fmt.Fprintln(os.Stderr, "nshard:", err)
		os.Exit(1)
	}
}

func run(listen, mappingPath string, shards, shard int, noPlan bool) error {
	f, err := os.Open(mappingPath)
	if err != nil {
		return err
	}
	m, err := compile.ReadMapping(f)
	f.Close()
	if err != nil {
		return err
	}
	st := m.Stats
	if st.ChipCoresX <= 0 || st.ChipCoresY <= 0 {
		return fmt.Errorf("mapping %s is not tiled-compiled (no chip dimensions recorded); recompile with -chips", mappingPath)
	}
	cfg := system.Config{ChipCoresX: st.ChipCoresX, ChipCoresY: st.ChipCoresY}
	srv, err := remote.NewServer(m, cfg, shards, shard, chip.Options{NoPlan: noPlan})
	if err != nil {
		return err
	}
	network := "tcp"
	if strings.Contains(listen, "/") {
		network = "unix"
		// A stale socket from a previous run blocks the listen; remove it.
		os.Remove(listen)
	}
	fmt.Printf("nshard: shard %d/%d serving chips %v of a %dx%d-core-chip tile on %s\n",
		shard, shards, srv.Shard().Chips(), cfg.ChipCoresX, cfg.ChipCoresY, listen)
	switch w := srv.Window(); {
	case w == 0:
		fmt.Println("nshard: no cross-chip synapses; any exchange window is exact (drive with nsim -xwindow 0)")
	case w > 1:
		fmt.Printf("nshard: mapping proves exchange windows up to %d ticks exact (drive with nsim -xwindow)\n", w)
	default:
		fmt.Println("nshard: mapping's minimum boundary delay admits lockstep exchange only (window 1)")
	}
	return srv.ListenAndServe(network, listen)
}
