// Command npaper regenerates the reconstructed evaluation: every table
// and figure listed in DESIGN.md section 3 and EXPERIMENTS.md.
//
// Usage:
//
//	npaper                 # run every experiment at full size
//	npaper -quick          # shrunken workloads (seconds, for smoke runs)
//	npaper -exp T3,F5      # run a subset
//	npaper -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/neurogo/neurogo/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "use shrunken workloads")
		exp   = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	ids := experiments.IDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		r, err := experiments.Run(strings.TrimSpace(id), *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "npaper:", err)
			os.Exit(1)
		}
		fmt.Println(r.Render())
	}
}
