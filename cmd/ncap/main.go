// Command ncap prints the capacity and memory figures for arbitrary
// chip tilings (the T1 calculator).
//
// Usage:
//
//	ncap                     # the standard 64x64-core chip
//	ncap -width 128 -height 128
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/neurogo/neurogo"
	"github.com/neurogo/neurogo/internal/report"
)

func main() {
	var (
		width  = flag.Int("width", 64, "core grid width")
		height = flag.Int("height", 64, "core grid height")
	)
	flag.Parse()
	if *width <= 0 || *height <= 0 {
		fmt.Fprintln(os.Stderr, "ncap: dimensions must be positive")
		os.Exit(1)
	}
	c := neurogo.CapacityOf(*width, *height)
	tb := report.NewTable(fmt.Sprintf("Capacity of a %dx%d-core build", *width, *height),
		"quantity", "value")
	tb.AddRow("cores", report.I(int64(c.Cores)))
	tb.AddRow("neurons", report.I(int64(c.Neurons)))
	tb.AddRow("synapses", report.I(int64(c.Synapses)))
	tb.AddRow("SRAM (Mbit)", report.F(float64(c.SRAMBits)/1e6))
	tb.AddRow("mesh diameter (hops)", report.I(int64(c.MeshDiameter)))
	tb.Render(os.Stdout)
}
