// Command nsim compiles and runs a spiking network described by a JSON
// spec (see Spec in spec.go and examples/specs/pulse.json), printing the
// output events, a raster of the observed neurons, and the activity and
// energy accounting.
//
// Usage:
//
//	nsim -spec net.json
//	nsim -spec net.json -engine dense -ticks 200
//	nsim -spec net.json -chips 2x2              # serve across a 2x2 multi-chip tile
//	nsim -spec net.json -chips 2x2 -boundary 4  # boundary-aware placement, λ=4
//	nsim -spec net.json -chips 2x2 -save-mapping net.nmap   # export for nshard
//	nsim -spec net.json -chips 2x2 -remote /tmp/s0.sock,/tmp/s1.sock
//
// With -remote the tiled model is served across shard processes (one
// per address, hosted by cmd/nshard over the exported mapping), driven
// in exchange windows of one RPC round-trip each — bit-identical to
// the in-process tile. -xwindow widens the window up to the mapping's
// minimum cross-chip axonal delay (-xwindow 0 = widest legal),
// amortizing the round-trip out of the hot path.
//
// With -chips the network is recompiled for that tile: with λ > 0 the
// placer minimises chip crossings; with -boundary 0 the placement stays
// bit-identical to the untiled compile but the tiling (and its
// predicted inter-chip fraction) is still recorded. Either way the
// report compares the placement's predicted inter-chip fraction
// against the measured one.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/neurogo/neurogo"
	"github.com/neurogo/neurogo/internal/report"
	"github.com/neurogo/neurogo/internal/trace"
)

func main() {
	var (
		specPath = flag.String("spec", "", "path to the JSON network spec (required)")
		engine   = flag.String("engine", "event", "core engine: event, dense or parallel")
		workers  = flag.Int("workers", 2, "goroutines for the parallel engine")
		ticks    = flag.Int("ticks", 0, "override the spec's simulation length")
		raster   = flag.Bool("raster", true, "print an output raster")
		chips    = flag.String("chips", "", "tile the compiled grid across WxH physical chips (e.g. 2x2) and report boundary traffic")
		boundary = flag.Float64("boundary", 1, "boundary weight λ for the tile-aware recompile (with -chips; 0 keeps the tiling-blind placement)")
		noPlan   = flag.Bool("noplan", false, "force the legacy scalar core path (disable precompiled integration plans) for A/B debugging")
		saveMap  = flag.String("save-mapping", "", "write the compiled mapping to this file (for nshard) and exit without simulating")
		remoteAt = flag.String("remote", "", "comma-separated shard addresses (see cmd/nshard); serves the tiled model across those processes (requires -chips)")
		xwindow  = flag.Int("xwindow", 1, "exchange window: ticks per boundary exchange (per RPC round-trip with -remote); 0 = widest window the mapping proves exact")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "nsim: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	boundarySet := false
	flag.Visit(func(f *flag.Flag) { boundarySet = boundarySet || f.Name == "boundary" })
	if *chips == "" && boundarySet {
		fmt.Fprintln(os.Stderr, "nsim: -boundary only applies with -chips")
		os.Exit(2)
	}
	if *remoteAt != "" && *chips == "" {
		fmt.Fprintln(os.Stderr, "nsim: -remote needs -chips (the shards serve a tiled-compiled mapping)")
		os.Exit(2)
	}
	if err := run(*specPath, *engine, *workers, *ticks, *raster, *chips, *boundary, *noPlan, *saveMap, *remoteAt, *xwindow); err != nil {
		fmt.Fprintln(os.Stderr, "nsim:", err)
		os.Exit(1)
	}
}

// parseChips parses a WxH chip-tile spec like "2x2".
func parseChips(s string) (w, h int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) == 2 {
		w, werr := strconv.Atoi(parts[0])
		h, herr := strconv.Atoi(parts[1])
		if werr == nil && herr == nil && w > 0 && h > 0 {
			return w, h, nil
		}
	}
	return 0, 0, fmt.Errorf("invalid -chips %q (want WxH, e.g. 2x2)", s)
}

func run(specPath, engineName string, workers, ticksOverride int, raster bool, chips string, boundary float64, noPlan bool, saveMap, remoteAt string, xwindow int) error {
	data, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	spec, err := ParseSpec(data)
	if err != nil {
		return err
	}
	if ticksOverride > 0 {
		spec.Ticks = ticksOverride
	}
	built, err := spec.Build()
	if err != nil {
		return err
	}

	var eng neurogo.Engine
	switch engineName {
	case "event":
		eng = neurogo.EngineEvent
	case "dense":
		eng = neurogo.EngineDense
	case "parallel":
		eng = neurogo.EngineParallel
	default:
		return fmt.Errorf("unknown engine %q", engineName)
	}

	st := built.Mapping.Stats
	fmt.Printf("compiled: %d neurons, %d input lines -> %d cores (%d relays) on a %dx%d grid\n",
		built.Net.Neurons(), built.Net.InputLines(),
		st.UsedCores, st.Relays, st.GridWidth, st.GridHeight)

	opts := []neurogo.PipelineOption{
		neurogo.WithEngine(eng),
		neurogo.WithEngineWorkers(workers),
		neurogo.WithDrain(4),
	}
	if noPlan {
		opts = append(opts, neurogo.WithoutPlan())
		fmt.Println("integration plans disabled (-noplan): legacy scalar core path")
	}
	if xwindow != 1 {
		opts = append(opts, neurogo.WithExchangeWindow(xwindow))
	}
	if chips != "" {
		cw, ch, err := parseChips(chips)
		if err != nil {
			return err
		}
		if st.GridWidth%cw != 0 || st.GridHeight%ch != 0 {
			return fmt.Errorf("%dx%d-core grid does not tile across %dx%d chips", st.GridWidth, st.GridHeight, cw, ch)
		}
		chipX, chipY := st.GridWidth/cw, st.GridHeight/ch
		// Recompile for the serving tile: same spec options, grid pinned
		// to the realized dimensions, tiling recorded, and — with
		// -boundary λ > 0 — the placer minimising chip crossings too.
		opt := built.Opts
		opt.Width, opt.Height = st.GridWidth, st.GridHeight
		opt.ChipCoresX, opt.ChipCoresY = chipX, chipY
		opt.BoundaryWeight = boundary
		tiled, err := neurogo.Compile(built.Net, opt)
		if err != nil {
			return err
		}
		built.Mapping = tiled
		if remoteAt != "" {
			addrs := strings.Split(remoteAt, ",")
			opts = append(opts, neurogo.WithRemoteSystem(addrs...))
			fmt.Printf("serving across %d shard processes: %s\n", len(addrs), remoteAt)
		} else {
			opts = append(opts, neurogo.WithSystem(chipX, chipY))
		}
		fmt.Printf("tiled across %dx%d chips of %dx%d cores each\n", cw, ch, chipX, chipY)
		mode := fmt.Sprintf("boundary-aware (λ=%g)", boundary)
		if boundary == 0 {
			mode = "tiling-blind (λ=0, placement unchanged)"
		}
		fmt.Printf("recompiled %s: predicted inter-chip fraction %.4f, hop cost %.0f (tiling-blind: %.0f)\n",
			mode, tiled.Stats.PredictedInterChipFraction,
			tiled.Stats.PlacementCost, st.PlacementCost)
	}
	if saveMap != "" {
		f, err := os.Create(saveMap)
		if err != nil {
			return err
		}
		if err := neurogo.SaveMapping(f, built.Mapping); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("mapping saved to %s (serve shards with: nshard -mapping %s -shards N -shard I -listen ADDR)\n", saveMap, saveMap)
		return nil
	}
	p, err := neurogo.NewPipeline(built.Mapping, opts...)
	if err != nil {
		return err
	}
	session := p.NewSession()
	stream := session.Stream(context.Background())
	var rec trace.Recorder

	// Stable display order for outputs.
	var outIDs []neurogo.NeuronID
	for id := range built.OutputName {
		outIDs = append(outIDs, id)
	}
	sort.Slice(outIDs, func(i, j int) bool { return outIDs[i] < outIDs[j] })
	rowOf := map[neurogo.NeuronID]int32{}
	for i, id := range outIDs {
		rowOf[id] = int32(i)
	}

	record := func(labels []neurogo.Label) {
		for _, l := range labels {
			fmt.Printf("tick %4d: %s\n", l.Tick, built.OutputName[l.Neuron])
			rec.Record(l.Tick, rowOf[l.Neuron])
		}
	}
	// Spec injections are scheduled by tick, independent of outputs, so
	// the stream can be driven in exchange-window batches: inject the
	// window's spikes up front, then advance the whole window in one
	// step (one RPC round-trip per window with -remote). Bit-identical
	// to per-tick driving at any window width.
	if w := stream.ExchangeWindow(); w > 1 {
		fmt.Printf("exchange window: %d ticks per boundary exchange\n", w)
	}
	for t := 0; t < spec.Ticks; {
		n := stream.ExchangeWindow()
		if rem := spec.Ticks - t; n > rem {
			n = rem
		}
		base := stream.Now()
		for k := 0; k < n; k++ {
			for _, line := range spec.InjectionsAt(base+int64(k), built.Lines) {
				if err := stream.InjectAt(line, base+int64(k)); err != nil {
					return err
				}
			}
		}
		labels, err := stream.TickN(n)
		if err != nil {
			return err
		}
		record(labels)
		t += n
	}
	labels, err := stream.Drain()
	if err != nil {
		return err
	}
	record(labels)

	if raster && len(outIDs) > 0 {
		fmt.Println()
		fmt.Print(rec.Raster(len(outIDs), 0, int64(spec.Ticks)))
		for i, id := range outIDs {
			fmt.Printf("  row %d = %s\n", i, built.OutputName[id])
		}
	}

	u := neurogo.SessionUsageOf(session, true)
	rep := neurogo.DefaultEnergyCoefficients().Evaluate(u)
	tb := report.NewTable("activity and energy", "quantity", "value")
	st = built.Mapping.Stats
	if noPlan {
		tb.AddRow("core path", "scalar (-noplan)")
	} else {
		tb.AddRow("core path", "integration plan")
	}
	tb.AddRow("fast-path neuron coverage", report.F(st.DeterministicFraction))
	tb.AddRow("ticks", report.I(int64(u.Ticks)))
	tb.AddRow("synaptic events", report.I(int64(u.SynapticEvents)))
	tb.AddRow("spikes", report.I(int64(u.Spikes)))
	tb.AddRow("routed hops", report.I(int64(u.Hops)))
	if bt := session.Traffic(); bt.Chips > 1 {
		tb.AddRow("physical chips", report.I(int64(bt.Chips)))
		tb.AddRow("intra-chip spikes", report.I(int64(bt.IntraChip)))
		tb.AddRow("inter-chip spikes", report.I(int64(bt.InterChip)))
		tb.AddRow("inter-chip fraction (measured)", report.F(bt.InterChipFraction))
		tb.AddRow("inter-chip fraction (predicted)", report.F(bt.PredictedInterChipFraction))
		tb.AddRow("busiest link", report.I(int64(bt.BusiestLink)))
	}
	tb.AddRow("total energy (nJ)", report.F(rep.TotalPJ*1e-3))
	tb.AddRow("mean power (uW)", report.F(rep.MeanPowerW*1e6))
	fmt.Println()
	tb.Render(os.Stdout)
	return nil
}
