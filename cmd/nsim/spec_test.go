package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const minimalSpec = `{
  "inputs": [{"name": "in", "n": 2, "type": 0, "delay": 1}],
  "populations": [{"name": "p", "n": 2, "threshold": 1}],
  "edges": [
    {"from": "in:0", "to": "p:0"},
    {"from": "p:0", "to": "p:1"}
  ],
  "outputs": ["p:1"],
  "schedule": [{"tick": 0, "line": "in:0"}],
  "ticks": 10
}`

func TestParseAndBuildMinimal(t *testing.T) {
	spec, err := ParseSpec([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if built.Net.Neurons() != 2 || built.Net.InputLines() != 2 {
		t.Fatalf("net has %d neurons, %d lines", built.Net.Neurons(), built.Net.InputLines())
	}
	if len(built.OutputName) != 1 {
		t.Fatalf("outputs = %v", built.OutputName)
	}
	if _, ok := built.Lines["in:1"]; !ok {
		t.Fatal("line map incomplete")
	}
}

func TestSpecDefaults(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"populations":[{"name":"p","n":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Ticks != 50 {
		t.Fatalf("default ticks = %d", spec.Ticks)
	}
	if _, err := spec.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecRejections(t *testing.T) {
	cases := map[string]string{
		"no populations":    `{}`,
		"unknown field":     `{"populations":[{"name":"p","n":1}],"bogus":1}`,
		"bad reset":         `{"populations":[{"name":"p","n":1,"reset":"wat"}]}`,
		"dup population":    `{"populations":[{"name":"p","n":1},{"name":"p","n":1}]}`,
		"zero-size pop":     `{"populations":[{"name":"p","n":0}]}`,
		"too many weights":  `{"populations":[{"name":"p","n":1,"weights":[1,2,3,4,5]}]}`,
		"edge to unknown":   `{"populations":[{"name":"p","n":1}],"edges":[{"from":"p:0","to":"q:0"}]}`,
		"edge from unknown": `{"populations":[{"name":"p","n":1}],"edges":[{"from":"x:0","to":"p:0"}]}`,
		"edge bad index":    `{"populations":[{"name":"p","n":1}],"edges":[{"from":"p:5","to":"p:0"}]}`,
		"bad output ref":    `{"populations":[{"name":"p","n":1}],"outputs":["p:9"]}`,
		"bad schedule line": `{"populations":[{"name":"p","n":1}],"schedule":[{"tick":0,"line":"in:0"}]}`,
		"bad placer":        `{"populations":[{"name":"p","n":1}],"placer":"wat"}`,
	}
	for name, js := range cases {
		spec, err := ParseSpec([]byte(js))
		if err != nil {
			continue // rejected at parse time: fine
		}
		if _, err := spec.Build(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestInjectionsAtRepeats(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
	  "inputs": [{"name":"in","n":1}],
	  "populations": [{"name":"p","n":1}],
	  "schedule": [{"tick": 2, "line": "in:0", "repeat": 2, "every": 3}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	lines := map[string]int32{"in:0": 0}
	want := map[int64]int{2: 1, 5: 1, 8: 1}
	for tick := int64(0); tick < 12; tick++ {
		got := len(spec.InjectionsAt(tick, lines))
		if got != want[tick] {
			t.Fatalf("tick %d: %d injections, want %d", tick, got, want[tick])
		}
	}
}

func TestRunPulseSpecEndToEnd(t *testing.T) {
	// The shipped example spec must execute cleanly under every engine.
	path := "../../examples/specs/pulse.json"
	if _, err := os.Stat(path); err != nil {
		t.Skip("example spec not present")
	}
	for _, eng := range []string{"event", "dense", "parallel"} {
		if err := run(path, eng, 2, 0, false, "", 1, false, "", "", 1); err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
	}
	// And once over the -noplan scalar escape hatch.
	if err := run(path, "event", 2, 0, false, "", 1, true, "", "", 1); err != nil {
		t.Fatalf("-noplan: %v", err)
	}
}

func TestRunPulseSpecTiled(t *testing.T) {
	// The same spec served across a 1x1 chip tile (always divides) must
	// run cleanly and report zero inter-chip traffic.
	path := "../../examples/specs/pulse.json"
	if _, err := os.Stat(path); err != nil {
		t.Skip("example spec not present")
	}
	if err := run(path, "event", 1, 0, false, "1x1", 1, false, "", "", 1); err != nil {
		t.Fatalf("tiled run: %v", err)
	}
	if err := run(path, "event", 1, 0, false, "wat", 1, false, "", "", 1); err == nil {
		t.Fatal("invalid -chips accepted")
	}
}

func TestParseChips(t *testing.T) {
	if w, h, err := parseChips("2x3"); err != nil || w != 2 || h != 3 {
		t.Fatalf("parseChips(2x3) = %d,%d,%v", w, h, err)
	}
	for _, bad := range []string{"", "2", "0x2", "2x", "ax2", "2x-1", "2x2x4", "2x2junk"} {
		if _, _, err := parseChips(bad); err == nil {
			t.Errorf("parseChips(%q) accepted", bad)
		}
	}
}

func TestSplitRef(t *testing.T) {
	if _, _, err := splitRef("noindex"); err == nil {
		t.Error("missing colon accepted")
	}
	if _, _, err := splitRef("a:b"); err == nil {
		t.Error("non-numeric index accepted")
	}
	name, idx, err := splitRef("bank:12")
	if err != nil || name != "bank" || idx != 12 {
		t.Errorf("splitRef = (%q,%d,%v)", name, idx, err)
	}
}

// TestRunTiledBoundarySpec drives the -chips/-boundary path end to end:
// a four-core relay chain on a 4x2 grid served across a 2x1 chip tile,
// recompiled boundary-aware (λ=4), tiling-blind (λ=0), and with a tile
// that does not divide the grid (must be rejected).
func TestRunTiledBoundarySpec(t *testing.T) {
	var edges strings.Builder
	for i := 0; i < 256; i++ {
		fmt.Fprintf(&edges, `{"from":"in:%d","to":"a:%d"},`, i%4, i)
		fmt.Fprintf(&edges, `{"from":"a:%d","to":"b:%d"},`, i, i)
		fmt.Fprintf(&edges, `{"from":"b:%d","to":"c:%d"},`, i, i)
		fmt.Fprintf(&edges, `{"from":"c:%d","to":"d:%d"},`, i, i)
	}
	spec := fmt.Sprintf(`{
	  "grid": {"width": 4, "height": 2},
	  "inputs": [{"name": "in", "n": 4, "type": 0, "delay": 1}],
	  "populations": [
	    {"name": "a", "n": 256, "threshold": 1},
	    {"name": "b", "n": 256, "threshold": 1},
	    {"name": "c", "n": 256, "threshold": 1},
	    {"name": "d", "n": 256, "threshold": 1}
	  ],
	  "edges": [%s],
	  "outputs": ["d:0"],
	  "schedule": [{"tick": 0, "line": "in:0", "repeat": 3}],
	  "ticks": 8
	}`, strings.TrimSuffix(edges.String(), ","))
	path := filepath.Join(t.TempDir(), "chain.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "event", 1, 0, false, "2x1", 4, false, "", "", 1); err != nil {
		t.Fatalf("boundary-aware tiled run: %v", err)
	}
	if err := run(path, "event", 1, 0, false, "", 1, true, "", "", 1); err != nil {
		t.Fatalf("-noplan run: %v", err)
	}
	if err := run(path, "event", 1, 0, false, "2x1", 0, false, "", "", 1); err != nil {
		t.Fatalf("tiling-blind tiled run: %v", err)
	}
	if err := run(path, "event", 1, 0, false, "3x2", 1, false, "", "", 1); err == nil {
		t.Fatal("tile not dividing the grid accepted")
	}
}
