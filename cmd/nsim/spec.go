package main

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"github.com/neurogo/neurogo"
)

// Spec is the JSON network description nsim executes.
type Spec struct {
	// Grid optionally forces the core-grid dimensions (0 = auto).
	Grid struct {
		Width  int `json:"width"`
		Height int `json:"height"`
	} `json:"grid"`
	// Placer selects placement: "greedy" (default), "random", "anneal".
	Placer string `json:"placer"`
	// Seed drives placement and per-core PRNGs.
	Seed uint64 `json:"seed"`
	// Inputs declares external input banks.
	Inputs []InputSpec `json:"inputs"`
	// Populations declares neuron populations.
	Populations []PopSpec `json:"populations"`
	// Edges wires sources ("bank:i" or "pop:i") to neurons ("pop:i").
	Edges []EdgeSpec `json:"edges"`
	// Outputs lists externally observed neurons ("pop:i").
	Outputs []string `json:"outputs"`
	// Schedule lists input injections.
	Schedule []ScheduleSpec `json:"schedule"`
	// Ticks is the simulation length.
	Ticks int `json:"ticks"`
}

// InputSpec declares one input bank.
type InputSpec struct {
	Name  string `json:"name"`
	N     int    `json:"n"`
	Type  uint8  `json:"type"`
	Delay uint8  `json:"delay"`
}

// PopSpec declares one population; zero-valued fields fall back to the
// default integrator configuration.
type PopSpec struct {
	Name         string  `json:"name"`
	N            int     `json:"n"`
	Weights      []int16 `json:"weights"`
	Threshold    int32   `json:"threshold"`
	NegThreshold int32   `json:"negThreshold"`
	NegSaturate  bool    `json:"negSaturate"`
	Leak         int16   `json:"leak"`
	LeakReversal bool    `json:"leakReversal"`
	Reset        string  `json:"reset"` // normal|linear|none
	ResetV       int32   `json:"resetV"`
	MaskBits     uint8   `json:"maskBits"`
	OutType      uint8   `json:"outType"`
	OutDelay     uint8   `json:"outDelay"`
}

// EdgeSpec wires one connection.
type EdgeSpec struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// ScheduleSpec injects a line at a tick, optionally repeating.
type ScheduleSpec struct {
	Tick   int64  `json:"tick"`
	Line   string `json:"line"`
	Repeat int    `json:"repeat"` // additional injections (default 0)
	Every  int64  `json:"every"`  // tick spacing for repeats (default 1)
}

// Built is the compiled form of a Spec.
type Built struct {
	Net     *neurogo.Network
	Mapping *neurogo.Mapping
	// Opts are the compile options the mapping was built with, so
	// callers can recompile variants (e.g. boundary-aware for a tile).
	Opts neurogo.CompileOptions
	// Lines resolves "bank:i" to global input line indices.
	Lines map[string]int32
	// OutputName labels each output neuron for display.
	OutputName map[neurogo.NeuronID]string
	Spec       *Spec
}

// ParseSpec decodes and validates a JSON spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("nsim: parsing spec: %w", err)
	}
	if s.Ticks <= 0 {
		s.Ticks = 50
	}
	if len(s.Populations) == 0 {
		return nil, fmt.Errorf("nsim: spec has no populations")
	}
	return &s, nil
}

// splitRef parses "name:index".
func splitRef(ref string) (string, int, error) {
	i := strings.LastIndex(ref, ":")
	if i < 0 {
		return "", 0, fmt.Errorf("nsim: reference %q is not name:index", ref)
	}
	idx, err := strconv.Atoi(ref[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("nsim: reference %q has bad index", ref)
	}
	return ref[:i], idx, nil
}

// Build lowers the spec to a compiled mapping.
func (s *Spec) Build() (*Built, error) {
	net := neurogo.NewNetwork()
	banks := map[string]*neurogo.InputBank{}
	pops := map[string]*neurogo.Population{}

	for _, in := range s.Inputs {
		if in.N <= 0 {
			return nil, fmt.Errorf("nsim: input %q has size %d", in.Name, in.N)
		}
		if _, dup := banks[in.Name]; dup {
			return nil, fmt.Errorf("nsim: duplicate input bank %q", in.Name)
		}
		delay := in.Delay
		if delay == 0 {
			delay = 1
		}
		banks[in.Name] = net.AddInputBank(in.Name, in.N,
			neurogo.SourceProps{Type: neurogo.AxonType(in.Type), Delay: delay})
	}
	for _, ps := range s.Populations {
		if ps.N <= 0 {
			return nil, fmt.Errorf("nsim: population %q has size %d", ps.Name, ps.N)
		}
		if _, dup := pops[ps.Name]; dup {
			return nil, fmt.Errorf("nsim: duplicate population %q", ps.Name)
		}
		proto := neurogo.DefaultNeuron()
		if len(ps.Weights) > 0 {
			if len(ps.Weights) > 4 {
				return nil, fmt.Errorf("nsim: population %q has %d weights (max 4)", ps.Name, len(ps.Weights))
			}
			for i, w := range ps.Weights {
				proto.SynWeight[i] = w
			}
		}
		if ps.Threshold != 0 {
			proto.Threshold = ps.Threshold
		}
		proto.NegThreshold = ps.NegThreshold
		proto.NegSaturate = ps.NegSaturate
		proto.Leak = ps.Leak
		proto.LeakReversal = ps.LeakReversal
		proto.ResetV = ps.ResetV
		proto.MaskBits = ps.MaskBits
		switch ps.Reset {
		case "", "normal":
			proto.Reset = neurogo.ResetNormal
		case "linear":
			proto.Reset = neurogo.ResetLinear
		case "none":
			proto.Reset = neurogo.ResetNone
		default:
			return nil, fmt.Errorf("nsim: population %q has unknown reset %q", ps.Name, ps.Reset)
		}
		pop := net.AddPopulation(ps.Name, ps.N, proto)
		pops[ps.Name] = pop
		outDelay := ps.OutDelay
		if outDelay == 0 {
			outDelay = 1
		}
		for i := 0; i < ps.N; i++ {
			sp := net.SourceProps(pop.ID(i))
			sp.Type = neurogo.AxonType(ps.OutType)
			sp.Delay = outDelay
		}
	}

	resolveNeuron := func(ref string) (neurogo.NeuronID, error) {
		name, idx, err := splitRef(ref)
		if err != nil {
			return 0, err
		}
		pop, ok := pops[name]
		if !ok {
			return 0, fmt.Errorf("nsim: unknown population %q in %q", name, ref)
		}
		if idx < 0 || idx >= pop.N {
			return 0, fmt.Errorf("nsim: index out of range in %q", ref)
		}
		return pop.ID(idx), nil
	}

	lines := map[string]int32{}
	for name, b := range banks {
		for i := 0; i < b.N; i++ {
			lines[fmt.Sprintf("%s:%d", name, i)] = b.First + int32(i)
		}
	}

	for _, e := range s.Edges {
		to, err := resolveNeuron(e.To)
		if err != nil {
			return nil, err
		}
		if line, ok := lines[e.From]; ok {
			net.Connect(neurogo.InputNode(line), to)
			continue
		}
		from, err := resolveNeuron(e.From)
		if err != nil {
			return nil, fmt.Errorf("nsim: edge source %q is neither input nor neuron", e.From)
		}
		net.Connect(neurogo.NeuronNode(from), to)
	}

	outputName := map[neurogo.NeuronID]string{}
	for _, ref := range s.Outputs {
		id, err := resolveNeuron(ref)
		if err != nil {
			return nil, err
		}
		net.MarkOutput(id)
		outputName[id] = ref
	}

	for _, sch := range s.Schedule {
		if _, ok := lines[sch.Line]; !ok {
			return nil, fmt.Errorf("nsim: schedule references unknown line %q", sch.Line)
		}
	}

	opt := neurogo.CompileOptions{Seed: s.Seed, Width: s.Grid.Width, Height: s.Grid.Height}
	switch s.Placer {
	case "", "greedy":
		opt.Placer = neurogo.PlacerGreedy
	case "random":
		opt.Placer = neurogo.PlacerRandom
	case "anneal":
		opt.Placer = neurogo.PlacerAnneal
	default:
		return nil, fmt.Errorf("nsim: unknown placer %q", s.Placer)
	}
	mapping, err := neurogo.Compile(net, opt)
	if err != nil {
		return nil, err
	}
	return &Built{Net: net, Mapping: mapping, Opts: opt, Lines: lines, OutputName: outputName, Spec: s}, nil
}

// InjectionsAt returns the lines to inject at the given tick.
func (s *Spec) InjectionsAt(tick int64, lines map[string]int32) []int32 {
	var out []int32
	for _, sch := range s.Schedule {
		every := sch.Every
		if every <= 0 {
			every = 1
		}
		for k := 0; k <= sch.Repeat; k++ {
			if sch.Tick+int64(k)*every == tick {
				out = append(out, lines[sch.Line])
			}
		}
	}
	return out
}
