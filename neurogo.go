// Package neurogo is a complete, from-scratch implementation of a
// TrueNorth-class digital neurosynaptic architecture: the core model
// (256x256 binary crossbar, four axon types, stochastic digital
// integrate-and-fire neurons, 16-slot axon delay rings), the 2-D mesh
// network-on-chip with dimension-order routing, chips of thousands of
// cores, an event-calibrated energy model, and the programming stack —
// logical network models, a corelet library, a placing compiler, and
// bit-reproducible simulation engines.
//
// # Workflow
//
// Build a logical network (directly or with corelets), compile it onto a
// chip, then drive it with spike encoders and decode its outputs:
//
//	net := neurogo.NewNetwork()
//	in := net.AddInputBank("in", 1, neurogo.SourceProps{Type: 0, Delay: 1})
//	p := net.AddPopulation("p", 1, neurogo.DefaultNeuron())
//	net.Connect(in.Line(0), p.ID(0))
//	net.MarkOutput(p.ID(0))
//
//	mapping, err := neurogo.Compile(net, neurogo.CompileOptions{})
//	if err != nil { ... }
//	r := neurogo.NewRunner(mapping, neurogo.EngineEvent, 1)
//	r.InjectLine(0)
//	events := r.Run(8)
//
// For serving repeated or concurrent requests against one compiled
// mapping, build a Pipeline instead of driving a Runner by hand:
//
//	p, err := neurogo.NewPipeline(mapping,
//		neurogo.WithEncoder(neurogo.NewBernoulliEncoder(0.5, 99)),
//		neurogo.WithDecoder(neurogo.NewCounterDecoder(10)),
//		neurogo.WithWindow(16))
//	labels, err := p.ClassifyBatch(ctx, images)
//
// Pipelines hand out reusable Sessions (one independent chip each over
// the shared mapping), fan batches across a session pool with
// bit-identical results to sequential runs, and open incremental
// Streams for spatio-temporal workloads. With WithSystem the same
// pipeline serves one logical model across a multi-chip tile —
// bit-identical predictions, plus per-request chip-to-chip boundary
// traffic accounting (Pipeline.Traffic):
//
//	p, err := neurogo.NewPipeline(mapping, neurogo.WithSystem(4, 4), ...)
//	labels, err := p.ClassifyBatch(ctx, images)
//	fmt.Println(neurogo.PipelineTrafficOf(p).InterChipFraction)
//
// Mappings destined for a tile should be compiled for it: setting
// ChipCoresX/ChipCoresY (and a BoundaryWeight λ) makes the placer
// minimise chip crossings alongside hop distance, and the mapping
// records its predicted inter-chip fraction for comparison against the
// measured one:
//
//	mapping, err := neurogo.Compile(net, neurogo.CompileOptions{
//		ChipCoresX: 4, ChipCoresY: 4, BoundaryWeight: 2,
//	})
//	p, err := neurogo.NewPipeline(mapping, neurogo.WithSystem(4, 4), ...)
//	bt := neurogo.PipelineTrafficOf(p)
//	fmt.Println(bt.PredictedInterChipFraction, bt.InterChipFraction)
//
// A fleet of models is served through a Registry: many named mappings
// behind one front-end, each resolving on demand to a warm pipeline in
// an LRU of live pools, with zero-downtime hot swap and per-model
// usage, traffic and cold-start accounting:
//
//	r := neurogo.NewRegistry(neurogo.RegistryConfig{MaxWarm: 4})
//	r.Register("digits", mapping, opts...)
//	class, err := r.Classify(ctx, "digits", img)
//
// Simulation is deterministic: identical configurations and seeds yield
// bit-identical spike streams across the event-driven, dense and
// parallel engines.
//
// The public API re-exports the stable surface of the internal
// subsystems; see DESIGN.md for the architecture inventory and
// EXPERIMENTS.md for the reconstructed evaluation.
package neurogo

import (
	"errors"
	"io"
	"time"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/codec"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/corelet"
	"github.com/neurogo/neurogo/internal/dataset"
	"github.com/neurogo/neurogo/internal/energy"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/pipeline"
	"github.com/neurogo/neurogo/internal/registry"
	"github.com/neurogo/neurogo/internal/remote"
	"github.com/neurogo/neurogo/internal/sim"
	"github.com/neurogo/neurogo/internal/system"
	"github.com/neurogo/neurogo/internal/train"
)

// ---- Network modelling ----

// Network is a logical spiking network under construction.
type Network = model.Network

// Population is a named block of logical neurons.
type Population = model.Population

// InputBank is a named block of external input lines.
type InputBank = model.InputBank

// Node is an edge source: a neuron or an input line.
type Node = model.Node

// NeuronID identifies a logical neuron.
type NeuronID = model.NeuronID

// SourceProps configures a source's axon type and axonal delay.
type SourceProps = model.SourceProps

// NewNetwork returns an empty logical network.
func NewNetwork() *Network { return model.New() }

// NeuronNode wraps a neuron ID as an edge source.
func NeuronNode(id NeuronID) Node { return model.NeuronNode(id) }

// InputNode wraps an input line index as an edge source.
func InputNode(line int32) Node { return model.InputNode(line) }

// ---- Neuron model ----

// NeuronParams is the full per-neuron configuration.
type NeuronParams = neuron.Params

// AxonType selects one of the four per-neuron weights.
type AxonType = neuron.AxonType

// ResetMode selects post-spike behaviour.
type ResetMode = neuron.ResetMode

// Reset modes.
const (
	ResetNormal = neuron.ResetNormal
	ResetLinear = neuron.ResetLinear
	ResetNone   = neuron.ResetNone
)

// Behavior is one entry of the canonical behaviour gallery.
type Behavior = neuron.Behavior

// DefaultNeuron returns a plain deterministic integrator configuration.
func DefaultNeuron() NeuronParams { return neuron.Default() }

// Gallery returns the twenty-behaviour neuron gallery (experiment F1).
func Gallery() []Behavior { return neuron.Gallery() }

// ---- Compilation ----

// CompileOptions tunes placement and grid sizing, including the
// multi-chip tiling (ChipCoresX/ChipCoresY) and boundary weight λ of
// boundary-aware placement.
type CompileOptions = compile.Options

// Placer selects the placement algorithm.
type Placer = compile.Placer

// Placement algorithms.
const (
	PlacerGreedy = compile.PlacerGreedy
	PlacerRandom = compile.PlacerRandom
	PlacerAnneal = compile.PlacerAnneal
)

// Mapping is a compiled network: the chip image plus logical/physical
// lookup tables.
type Mapping = compile.Mapping

// Compile lowers a logical network onto a chip configuration.
func Compile(net *Network, opt CompileOptions) (*Mapping, error) {
	return compile.Compile(net, opt)
}

// SaveMapping serializes a compiled mapping (the deployable chip image
// plus host-side I/O tables) to w.
func SaveMapping(w io.Writer, m *Mapping) error { return m.Write(w) }

// LoadMapping deserializes a mapping written by SaveMapping. Loaded
// mappings run bit-identically to the originals.
func LoadMapping(r io.Reader) (*Mapping, error) { return compile.ReadMapping(r) }

// ---- Simulation ----

// Engine selects the core evaluation strategy.
type Engine = sim.Engine

// Evaluation engines.
const (
	EngineEvent    = sim.EngineEvent
	EngineDense    = sim.EngineDense
	EngineParallel = sim.EngineParallel
)

// Event is one output spike in logical time.
type Event = sim.Event

// Runner executes a compiled mapping tick by tick over a Backend.
type Runner = sim.Runner

// Backend is the hardware-execution seam under a Runner: a single chip
// or a multi-chip system tile. Both yield bit-identical spike streams
// for the same mapping; tiling only changes accounting.
type Backend = sim.Backend

// Logical interprets a network directly (the executable specification).
type Logical = sim.Logical

// NewRunner builds a runner over a compiled mapping on a single-chip
// backend.
func NewRunner(m *Mapping, engine Engine, workers int) *Runner {
	return sim.NewRunner(m, engine, workers)
}

// NewSystemRunner builds a runner whose backend is a multi-chip tile:
// the mapping's core grid partitioned onto physical chips of the given
// per-chip dimensions, with chip-to-chip boundary traffic accounted.
// It errors when the core grid does not tile exactly.
func NewSystemRunner(m *Mapping, cfg SystemConfig, engine Engine, workers int) (*Runner, error) {
	return sim.NewSystemRunner(m, cfg, engine, workers)
}

// NewShardedRunner builds a runner over a partitioned system: the
// tile's chips split into in-process shards with explicit boundary-
// spike exchange per tick — the same code path the distributed
// (multi-process) deployment runs, bit-identical to NewSystemRunner.
func NewShardedRunner(m *Mapping, cfg SystemConfig, shards int, engine Engine, workers int) (*Runner, error) {
	return sim.NewShardedRunner(m, cfg, shards, engine, workers, sim.RunnerOptions{})
}

// NewLogical builds the reference interpreter for a network.
func NewLogical(net *Network) *Logical { return sim.NewLogical(net) }

// ---- Inference pipeline ----

// Pipeline serves streaming and batched inference over one compiled
// mapping (see internal/pipeline).
type Pipeline = pipeline.Pipeline

// PipelineSession is one independent inference lane of a pipeline.
type PipelineSession = pipeline.Session

// PipelineStream is the incremental spatio-temporal mode of a session.
type PipelineStream = pipeline.Stream

// PipelineOption configures a pipeline.
type PipelineOption = pipeline.Option

// Label is one decoded output event (neuron, logical tick, class).
type Label = pipeline.Label

// LineMapper maps encoder emission indices to physical input lines.
type LineMapper = pipeline.LineMapper

// ClassMapper maps output neurons to class indices.
type ClassMapper = pipeline.ClassMapper

// NewPipeline builds an inference pipeline over a compiled mapping.
func NewPipeline(m *Mapping, opts ...PipelineOption) (*Pipeline, error) {
	return pipeline.New(m, opts...)
}

// WithEngine selects the pipeline's core evaluation engine.
func WithEngine(e Engine) PipelineOption { return pipeline.WithEngine(e) }

// WithEngineWorkers sets per-session goroutines for EngineParallel.
func WithEngineWorkers(n int) PipelineOption { return pipeline.WithEngineWorkers(n) }

// WithWorkers sizes the session pool ClassifyBatch fans across.
func WithWorkers(n int) PipelineOption { return pipeline.WithWorkers(n) }

// WithEncoder sets the prototype encoder (cloned per session).
func WithEncoder(e Encoder) PipelineOption { return pipeline.WithEncoder(e) }

// WithDecoder sets the prototype decoder (cloned per session).
func WithDecoder(d Decoder) PipelineOption { return pipeline.WithDecoder(d) }

// WithWindow sets the presentation length in ticks.
func WithWindow(n int) PipelineOption { return pipeline.WithWindow(n) }

// WithDrain sets the post-window drain ticks.
func WithDrain(n int) PipelineOption { return pipeline.WithDrain(n) }

// WithLineMapper sets the emission-index -> input-line mapping.
func WithLineMapper(f LineMapper) PipelineOption { return pipeline.WithLineMapper(f) }

// WithClassMapper sets the output-neuron -> class mapping.
func WithClassMapper(f ClassMapper) PipelineOption { return pipeline.WithClassMapper(f) }

// WithSystem serves every pipeline session over a multi-chip tile of
// chipCoresX x chipCoresY-core chips instead of one monolithic chip.
// Predictions are bit-identical to the single-chip backend; boundary
// traffic becomes observable per request via Pipeline.Traffic and the
// inter-chip fields of PipelineUsageOf.
func WithSystem(chipCoresX, chipCoresY int) PipelineOption {
	return pipeline.WithSystem(chipCoresX, chipCoresY)
}

// WithRemoteSystem serves the model across shard processes (see
// cmd/nshard): the tile's chips partitioned over the given addresses,
// driven in lockstep with one RPC round-trip per tick, bit-identical
// to the in-process backends. The mapping must be tiled-compiled
// (CompileOptions.ChipCoresX/Y). Remote pipelines are single-lane —
// the shard processes hold one model state. Shard failures surface as
// errors matching ErrShardDown, never hangs.
func WithRemoteSystem(addrs ...string) PipelineOption {
	return pipeline.WithRemoteSystem(addrs...)
}

// WithRemoteTimeout bounds each shard RPC round-trip of a
// WithRemoteSystem pipeline.
func WithRemoteTimeout(d time.Duration) PipelineOption {
	return pipeline.WithRemoteTimeout(d)
}

// WithExchangeWindow sets the exchange window: how many ticks the
// backend executes per boundary-spike exchange (per RPC round-trip on
// a WithRemoteSystem pipeline). 1 — the default — is classic lockstep;
// n <= 0 asks for the widest window the mapping proves exact (its
// minimum cross-chip axonal delay, see MaxExchangeWindow). Output is
// bit-identical at every legal width; only the RPC amortization
// changes.
func WithExchangeWindow(n int) PipelineOption {
	return pipeline.WithExchangeWindow(n)
}

// MaxExchangeWindow reports the widest exchange window a mapping's
// delay structure proves exact — the cap WithExchangeWindow(0)
// resolves to.
func MaxExchangeWindow(m *Mapping) int { return sim.MaxExchangeWindow(m) }

// ErrShardDown is matched (errors.Is) by every error a distributed
// backend surfaces after losing a shard process.
var ErrShardDown = system.ErrShardDown

// ShardServer hosts one tile shard for WithRemoteSystem clients — the
// in-process counterpart of the nshard binary, for tests and
// single-binary deployments.
type ShardServer = remote.Server

// NewShardServer builds the shard server for partition coordinates
// (shard of shards) over a tiled-compiled mapping; serve it with
// ListenAndServe ("unix" sockets on one host, "tcp" across hosts).
func NewShardServer(m *Mapping, shards, shard int) (*ShardServer, error) {
	st := m.Stats
	if st.ChipCoresX <= 0 || st.ChipCoresY <= 0 {
		return nil, errors.New("neurogo: shard servers need a tiled-compiled mapping (CompileOptions.ChipCoresX/Y)")
	}
	cfg := system.Config{ChipCoresX: st.ChipCoresX, ChipCoresY: st.ChipCoresY}
	return remote.NewServer(m, cfg, shards, shard, chip.Options{})
}

// WithoutPlan pins every session's cores to the legacy scalar
// integration path, disabling the precompiled per-core plans (the
// cmd/nsim -noplan escape hatch). Bit-identical output, scalar
// throughput; for A/B debugging only.
func WithoutPlan() PipelineOption { return pipeline.WithoutPlan() }

// BoundaryTraffic summarises a pipeline's multi-chip boundary traffic
// (intra/inter spike counts, inter-chip fraction, busiest link).
type BoundaryTraffic = pipeline.BoundaryTraffic

// PipelineTrafficOf aggregates boundary traffic across all of a
// pipeline's sessions, race-safe against in-flight presentations (the
// traffic analogue of PipelineUsageOf).
func PipelineTrafficOf(p *Pipeline) BoundaryTraffic { return p.Traffic() }

// TwinLines adapts a corelet LinesFor (pixel -> pos/neg pair) into a
// LineMapper.
func TwinLines(linesFor func(int) (int32, int32)) LineMapper {
	return pipeline.TwinLines(linesFor)
}

// ---- Async serving ----

// AsyncPipeline is the non-blocking serving front-end of a Pipeline: a
// bounded, priority-classed submit queue in front of a worker pool of
// sessions, with channel-based submit/collect, optional adaptive
// micro-batching and SLO admission control. Build one with
// Pipeline.Async (options are validated there — zero means default,
// negatives are an error):
//
//	ap, err := p.Async(neurogo.WithAsyncWorkers(8), neurogo.WithMaxBatch(64))
//	if err != nil { ... }
//	results := ap.Results() // subscribe before submitting
//	go func() {
//		for _, img := range images {
//			ap.Submit(ctx, img) // or keep the returned channel per request
//		}
//		ap.Close() // drains queued + in-flight work, then results closes
//	}()
//	for r := range results { // drain obligation: read until closed
//		handle(r.Seq, r.Class, r.Err)
//	}
//
// Completions arrive out of submission order; re-order by AsyncResult.Seq.
// Re-ordered results are bit-identical to sequential classification —
// batched or not. SubmitPriority classes requests high/normal/low
// (low is shed with ErrShed instead of blocking when the queue is full
// or the estimated wait exceeds WithSLOBudget), and Metrics snapshots
// the serving state: queue/in-flight gauges, shed and batch counters,
// p50/p95/p99 queue-wait and end-to-end latency.
type AsyncPipeline = pipeline.AsyncPipeline

// AsyncResult is one asynchronous classification outcome (sequence
// number, class, error).
type AsyncResult = pipeline.Result

// AsyncOption configures Pipeline.Async.
type AsyncOption = pipeline.AsyncOption

// Priority is the admission class of an AsyncPipeline.SubmitPriority
// call: higher classes dequeue first under backlog, and only
// PriorityLow is ever shed by admission control.
type Priority = pipeline.Priority

// Admission classes for AsyncPipeline.SubmitPriority.
const (
	PriorityHigh   = pipeline.PriorityHigh
	PriorityNormal = pipeline.PriorityNormal
	PriorityLow    = pipeline.PriorityLow
)

// ServingMetrics is the AsyncPipeline.Metrics snapshot: configuration
// echo, queue/in-flight gauges, submit/shed/batch counters and latency
// summaries. It marshals cleanly to JSON for scrape endpoints.
type ServingMetrics = pipeline.Metrics

// LatencyStats is a histogram summary (count, mean, p50/p95/p99, max).
type LatencyStats = pipeline.LatencyStats

// LatencyHistogram is the lock-cheap log-linear histogram behind every
// LatencyStats; the zero value is usable.
type LatencyHistogram = pipeline.LatencyHistogram

// ErrAsyncClosed is the error an AsyncResult carries for submissions
// made after AsyncPipeline.Close.
var ErrAsyncClosed = pipeline.ErrClosed

// ErrShed is the error an AsyncResult carries when admission control
// refuses low-priority work (full queue, or estimated wait above the
// SLO budget). Test with errors.Is.
var ErrShed = pipeline.ErrShed

// ErrDeadline is the error an AsyncResult carries when a request's
// WithSLOBudget lapsed while it sat in the queue: deadline-aware
// scheduling fails it at dequeue, without spending worker time on an
// answer that is already late. Counted in ServingMetrics.Expired;
// test with errors.Is.
var ErrDeadline = pipeline.ErrDeadline

// Decision is one continuous-decision emission of a stream: the tick
// at which the windowed decoder's confidence gate fired, the winning
// class, and its margin in spike units. Decisions are bit-identical
// across engines and serving front-ends.
type Decision = pipeline.Decision

// AsyncStream is an open-ended stream served under the async
// front-end (AsyncPipeline.OpenStream): a PipelineStream on its own
// session whose operations are metered into ServingMetrics, with
// continuous decisions counted as they are delivered.
//
//	as, err := ap.OpenStream(ctx)
//	decisions := as.Decisions() // subscribe before feeding
//	for { as.Present(frame, 8) ... }
//	as.Drain()                  // decisions channel closes
type AsyncStream = pipeline.AsyncStream

// WithAsyncWorkers sets the async worker-pool size (default: the
// pipeline's WithWorkers value).
func WithAsyncWorkers(n int) AsyncOption { return pipeline.WithAsyncWorkers(n) }

// WithQueueDepth bounds the async submit queue — the backpressure
// knob (default 2x workers, or 2x MaxBatch if larger).
func WithQueueDepth(n int) AsyncOption { return pipeline.WithQueueDepth(n) }

// WithMaxBatch caps the adaptive micro-batch (default 1: batching off).
// With n >= 2 a dispatcher coalesces queued submissions and fans each
// batch out to the pool in contiguous chunks — bit-identical results,
// amortised handoffs.
func WithMaxBatch(n int) AsyncOption { return pipeline.WithMaxBatch(n) }

// WithBatchWindow bounds how long an open micro-batch may wait for more
// requests before dispatching short (default 0: greedy — coalesce only
// what is already queued, never idle the pool). Requires WithMaxBatch.
func WithBatchWindow(d time.Duration) AsyncOption { return pipeline.WithBatchWindow(d) }

// WithSLOBudget sets the tail-latency budget admission control defends:
// once the estimated queue wait exceeds it, PriorityLow submissions are
// shed with ErrShed (default 0: disabled).
func WithSLOBudget(d time.Duration) AsyncOption { return pipeline.WithSLOBudget(d) }

// ErrPipelineClosed is the sentinel error every pipeline serving entry
// point returns after Pipeline.Close (Close releases the session pool;
// final Usage/Traffic figures stay readable).
var ErrPipelineClosed = pipeline.ErrPipelineClosed

// ---- Model registry ----

// Registry serves many named models behind one front-end: models
// register as compiled mappings, lazily-loaded mapping streams, or
// build funcs compiled on first request; each resolves to a warm
// Pipeline held in an LRU of live session pools, evicted under
// configurable pressure with in-flight requests always drained first.
// Swap hot-swaps a recompiled mapping with zero downtime.
//
//	r := neurogo.NewRegistry(neurogo.RegistryConfig{MaxWarm: 4})
//	defer r.Close()
//	r.Register("digits", mapping, opts...)
//	class, err := r.Classify(ctx, "digits", img)
//	r.Swap("digits", retrained)          // zero-downtime cutover
//	fmt.Println(r.Stats().Models[0].Hits)
type Registry = registry.Registry

// RegistryConfig bounds a registry's warm footprint (max warm models,
// max total live sessions; zero means unlimited).
type RegistryConfig = registry.Config

// RegistryStats is a whole-registry snapshot (per-model records plus
// aggregates) for serving dashboards.
type RegistryStats = registry.Stats

// ModelStats is one model's serving record: hits, cold starts and
// their latency, evictions, swaps, live sessions.
type ModelStats = registry.ModelStats

// Registry sentinel errors.
var (
	ErrUnknownModel   = registry.ErrUnknownModel
	ErrDuplicateModel = registry.ErrDuplicateModel
	ErrRegistryClosed = registry.ErrClosed
)

// NewRegistry returns an empty model registry.
func NewRegistry(cfg RegistryConfig) *Registry { return registry.New(cfg) }

// SessionUsageOf extracts a session's cumulative activity record for
// energy pricing (the session analogue of UsageOf).
func SessionUsageOf(s *PipelineSession, hardware bool) EnergyUsage {
	return s.Usage(hardware)
}

// PipelineUsageOf aggregates activity across all of a pipeline's
// sessions, priced as one time-multiplexed chip.
func PipelineUsageOf(p *Pipeline, hardware bool) EnergyUsage {
	return p.Usage(hardware)
}

// ---- Chip and capacity ----

// Capacity describes the resources of a chip build.
type Capacity = chip.Capacity

// CapacityOf computes capacity figures for a WxH-core build.
func CapacityOf(width, height int) Capacity { return chip.CapacityOf(width, height) }

// ---- Multi-chip systems ----

// System wraps a compiled core grid partitioned onto a tile of physical
// chips, accounting chip-to-chip link traffic.
type System = system.System

// SystemConfig sets the per-chip core dimensions of a tile.
type SystemConfig = system.Config

// NewSystem partitions a compiled mapping's core grid onto physical
// chips of the given per-chip dimensions.
func NewSystem(m *Mapping, cfg SystemConfig) (*System, error) {
	return system.New(m.Chip, cfg)
}

// ---- Energy ----

// EnergyCoefficients price simulator activity.
type EnergyCoefficients = energy.Coefficients

// EnergyUsage is the activity to be priced.
type EnergyUsage = energy.Usage

// EnergyReport is the priced result.
type EnergyReport = energy.Report

// DefaultEnergyCoefficients returns the neuromorphic calibration
// (~70 mW / ~26 pJ per synaptic event at the nominal operating point).
func DefaultEnergyCoefficients() EnergyCoefficients { return energy.DefaultCoefficients() }

// ConventionalEnergyCoefficients models a general-purpose machine
// running the same workload (the von Neumann baseline).
func ConventionalEnergyCoefficients() EnergyCoefficients { return energy.ConventionalCoefficients() }

// UsageOf extracts an energy usage record from a runner's backend after
// a run. hardware=true charges neuron updates as the silicon would
// (every neuron, every tick). Everything is priced over the runner's
// whole life: activity counters, ticks (LifetimeTicks) and — for
// system-backed runners — the inter-chip spike counts all span Resets,
// so leakage, mean power and the link surcharge stay consistent across
// reused runners.
func UsageOf(r *Runner, hardware bool) EnergyUsage {
	u := energy.FromChip(r.Counters(), r.Mapping().Stats.UsedCores, r.LifetimeTicks(), hardware)
	u.IntraChipSpikes, u.InterChipSpikes = r.BoundarySpikes()
	return u
}

// ---- Corelets ----

// Classifier is the ternary linear classifier corelet.
type Classifier = corelet.Classifier

// CommitteeClassifier pools several ternary replicas.
type CommitteeClassifier = corelet.CommitteeClassifier

// ClassifierParams tunes classifier corelets.
type ClassifierParams = corelet.ClassifierParams

// Detector is the template-matching object-detector corelet.
type Detector = corelet.Detector

// WTA is the winner-take-all corelet.
type WTA = corelet.WTA

// DelayLine is the relay-chain corelet.
type DelayLine = corelet.DelayLine

// PatternDetector recognises spatio-temporal spike templates.
type PatternDetector = corelet.PatternDetector

// Conv2D is the ternary convolution-layer corelet.
type Conv2D = corelet.Conv2D

// Pool2D is the OR-pooling corelet.
type Pool2D = corelet.Pool2D

// Kernel is a square ternary convolution kernel.
type Kernel = corelet.Kernel

// FeatureClassifier reads internal feature neurons.
type FeatureClassifier = corelet.FeatureClassifier

// FeatureSource is anything exposing twin feature-neuron pairs.
type FeatureSource = corelet.FeatureSource

// DefaultClassifierParams returns calibrated classifier defaults.
func DefaultClassifierParams() ClassifierParams { return corelet.DefaultClassifierParams() }

// OrientedKernels returns the four 3x3 oriented edge kernels.
func OrientedKernels() []Kernel { return corelet.OrientedKernels() }

// BuildConv2D wires a ternary convolution layer.
func BuildConv2D(net *Network, name string, imgW, imgH int, kernels []Kernel, stride int, threshold int32) (*Conv2D, error) {
	return corelet.BuildConv2D(net, name, imgW, imgH, kernels, stride, threshold)
}

// BuildPool2D wires OR-pooling over a conv layer.
func BuildPool2D(net *Network, conv *Conv2D, name string, window int) (*Pool2D, error) {
	return corelet.BuildPool2D(net, conv, name, window)
}

// BuildFeatureClassifier wires a ternary read-out over a feature source.
func BuildFeatureClassifier(net *Network, t *TernaryModel, src FeatureSource, name string, p ClassifierParams) (*FeatureClassifier, error) {
	return corelet.BuildFeatureClassifier(net, t, src, name, p)
}

// ConvFeatures computes the float-side binary conv features matching a
// single-shot presentation of a compiled conv layer.
func ConvFeatures(img []float64, imgW int, kernels []Kernel, stride int, threshold int32) []float64 {
	return corelet.ConvFeatures(img, imgW, kernels, stride, threshold)
}

// FloatPool computes the float-side OR-pooling matching BuildPool2D.
func FloatPool(features []float64, kernels, convW, convH, window int) []float64 {
	return corelet.FloatPool(features, kernels, convW, convH, window)
}

// BuildClassifier wires a ternary model into net as a classifier.
func BuildClassifier(net *Network, t *TernaryModel, name string, p ClassifierParams) *Classifier {
	return corelet.BuildClassifier(net, t, name, p)
}

// BuildCommitteeClassifier wires a committee of ternary replicas.
func BuildCommitteeClassifier(net *Network, com *Committee, name string, p ClassifierParams) (*CommitteeClassifier, error) {
	return corelet.BuildCommitteeClassifier(net, com, name, p)
}

// BuildDetector wires a cellsX x cellsY template-matching detector.
func BuildDetector(net *Network, cellsX, cellsY, cellPix int, threshold int32) *Detector {
	return corelet.BuildDetector(net, cellsX, cellsY, cellPix, threshold)
}

// BuildWTA wires a k-way winner-take-all circuit.
func BuildWTA(net *Network, k int, threshold int32, inhibition int16) *WTA {
	return corelet.BuildWTA(net, k, threshold, inhibition)
}

// BuildDelayLine wires a relay chain with the given per-stage delays.
func BuildDelayLine(net *Network, name string, delays []uint8) *DelayLine {
	return corelet.BuildDelayLine(net, name, delays)
}

// BuildPatternDetector wires a coincidence detector for a spike template.
func BuildPatternDetector(net *Network, pat *Pattern, threshold int32) (*PatternDetector, error) {
	return corelet.BuildPatternDetector(net, pat, threshold)
}

// ---- Training ----

// LinearModel is the float training baseline.
type LinearModel = train.LinearModel

// TernaryModel is the crossbar-deployable quantisation.
type TernaryModel = train.TernaryModel

// Committee is a set of dithered ternary replicas.
type Committee = train.Committee

// TrainOptions tunes SGD training.
type TrainOptions = train.Options

// TrainLinear fits a softmax linear classifier.
func TrainLinear(x [][]float64, y []int, classes int, opt TrainOptions) (*LinearModel, error) {
	return train.TrainLinear(x, y, classes, opt)
}

// NewCommittee builds k stochastically dithered ternary replicas.
func NewCommittee(m *LinearModel, k int, frac float64, seed uint64) *Committee {
	return train.NewCommittee(m, k, frac, seed)
}

// ---- Codecs ----

// Encoder turns value vectors into per-tick spike emissions; custom
// codecs implement it (Tick, Reset, Clone) and plug into pipelines via
// WithEncoder.
type Encoder = codec.Encoder

// Decoder reduces decoded output spikes to a class decision; custom
// codecs implement it (ObserveAt, Decide, Reset, Clone) and plug into
// pipelines via WithDecoder.
type Decoder = codec.Decoder

// BernoulliEncoder emits independent per-tick spikes with p = value*max.
type BernoulliEncoder = codec.Bernoulli

// RegularEncoder emits evenly spaced deterministic trains.
type RegularEncoder = codec.Regular

// TTFSEncoder emits a time-to-first-spike (latency) code.
type TTFSEncoder = codec.TTFS

// BinaryEncoder emits thresholded frames held for a fixed tick count.
type BinaryEncoder = codec.Binary

// StreamDecoder is a Decoder that also decides continuously: DecideAt
// asks for a gated decision at a tick frontier, enabling open-ended
// streams to emit Decisions as evidence accumulates instead of
// waiting for a presentation boundary. SlidingCounterDecoder and
// DecayCounterDecoder implement it.
type StreamDecoder = codec.StreamDecoder

// CounterDecoder decodes by per-class spike count.
type CounterDecoder = codec.Counter

// SlidingCounterDecoder decodes by per-class spike count over a
// sliding window of the last W ticks with exact eviction, plus a
// confidence gate (MinCount, MinMargin) for abstention. With the
// window covering a whole presentation it reproduces CounterDecoder
// exactly.
type SlidingCounterDecoder = codec.SlidingCounter

// DecayCounterDecoder decodes by exponentially decaying per-class
// evidence in integer fixed point — half-life ~0.69*2^shift ticks,
// bit-identical across engines — with level and margin gates.
type DecayCounterDecoder = codec.DecayCounter

// FirstSpikeDecoder decodes by earliest spike.
type FirstSpikeDecoder = codec.FirstSpike

// NewBernoulliEncoder returns a Bernoulli rate encoder.
func NewBernoulliEncoder(maxRate float64, seed uint64) *BernoulliEncoder {
	return codec.NewBernoulli(maxRate, seed)
}

// NewRegularEncoder returns a regular-train encoder.
func NewRegularEncoder(maxRate float64) *RegularEncoder { return codec.NewRegular(maxRate) }

// NewTTFSEncoder returns a latency encoder over a window.
func NewTTFSEncoder(window int, threshold float64) *TTFSEncoder {
	return codec.NewTTFS(window, threshold)
}

// NewBinaryEncoder returns a thresholded frame encoder that re-emits
// the frame on each of the first hold ticks of a presentation.
func NewBinaryEncoder(threshold float64, hold int) *BinaryEncoder {
	return codec.NewBinary(threshold, hold)
}

// NewCounterDecoder returns a spike-count decoder over n classes.
func NewCounterDecoder(n int) *CounterDecoder { return codec.NewCounter(n) }

// NewSlidingCounterDecoder returns a windowed spike-count decoder over
// n classes and a window of the last `window` ticks.
func NewSlidingCounterDecoder(n, window int) *SlidingCounterDecoder {
	return codec.NewSlidingCounter(n, window)
}

// NewDecayCounterDecoder returns a decaying-evidence decoder over n
// classes; each tick multiplies the evidence by (1 - 2^-shift).
func NewDecayCounterDecoder(n int, shift uint) *DecayCounterDecoder {
	return codec.NewDecayCounter(n, shift)
}

// NewFirstSpikeDecoder returns a latency decoder.
func NewFirstSpikeDecoder() *FirstSpikeDecoder { return codec.NewFirstSpike() }

// ---- Synthetic datasets ----

// DigitGenerator produces noisy, jittered digit images.
type DigitGenerator = dataset.Digits

// SceneGenerator produces multi-object detection frames.
type SceneGenerator = dataset.Scenes

// Pattern is a spatio-temporal spike template.
type Pattern = dataset.Pattern

// NumDigitClasses is the number of digit classes.
const NumDigitClasses = dataset.NumClasses

// NewDigitGenerator returns a digit image generator (size must be a
// multiple of 8; noise is the pixel flip probability).
func NewDigitGenerator(size int, noise float64, maxShift int, seed uint64) *DigitGenerator {
	return dataset.NewDigits(size, noise, maxShift, seed)
}

// NewSceneGenerator returns a detection-scene generator.
func NewSceneGenerator(cellsX, cellsY, cellPix int, objectP, speckle float64, seed uint64) *SceneGenerator {
	return dataset.NewScenes(cellsX, cellsY, cellPix, objectP, speckle, seed)
}

// NewPattern draws a random spatio-temporal template.
func NewPattern(lines, span, events int, seed uint64) *Pattern {
	return dataset.NewPattern(lines, span, events, seed)
}

// MotifStream is the keyword-spotting workload: an endless spike
// stream of Poisson distractor traffic with a fixed Pattern embedded
// at seeded random gaps, reporting ground truth as each embedding
// completes.
type MotifStream = dataset.MotifStream

// SensorStream is the anomaly-detection workload: a synthetic sensor
// reading per tick (sine baseline plus noise in [0, 1]) with injected
// anomaly excursions and per-tick ground truth.
type SensorStream = dataset.SensorStream

// NewMotifStream embeds pat into distractor traffic at the given
// per-line per-tick rate, with gaps drawn from [minGap, maxGap].
func NewMotifStream(pat *Pattern, rate float64, minGap, maxGap int, seed uint64) *MotifStream {
	return dataset.NewMotifStream(pat, rate, minGap, maxGap, seed)
}

// NewSensorStream builds the sensor trace: a sine baseline of the
// given period with uniform noise, and anomaly excursions of burst
// ticks at gaps drawn from [minGap, maxGap].
func NewSensorStream(period, burst, minGap, maxGap int, noise float64, seed uint64) *SensorStream {
	return dataset.NewSensorStream(period, burst, minGap, maxGap, noise, seed)
}
