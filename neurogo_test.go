package neurogo

import (
	"testing"
)

// TestPublicAPIEndToEnd exercises the documented workflow: build,
// compile, run, decode — all through the public surface only.
func TestPublicAPIEndToEnd(t *testing.T) {
	net := NewNetwork()
	in := net.AddInputBank("in", 2, SourceProps{Type: 0, Delay: 1})
	p := net.AddPopulation("p", 2, DefaultNeuron())
	net.Connect(in.Line(0), p.ID(0))
	net.Connect(in.Line(1), p.ID(1))
	net.MarkOutput(p.ID(0))
	net.MarkOutput(p.ID(1))

	mapping, err := Compile(net, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(mapping, EngineEvent, 1)
	if err := r.InjectLine(0); err != nil {
		t.Fatal(err)
	}
	events := r.Run(6)
	if len(events) != 1 || events[0].Neuron != p.ID(0) {
		t.Fatalf("events = %+v", events)
	}
}

func TestPublicGallery(t *testing.T) {
	if len(Gallery()) != 20 {
		t.Fatal("gallery must have 20 behaviours")
	}
}

func TestPublicCapacity(t *testing.T) {
	c := CapacityOf(64, 64)
	if c.Neurons != 1048576 {
		t.Fatalf("Neurons = %d", c.Neurons)
	}
}

func TestPublicEnergy(t *testing.T) {
	net := NewNetwork()
	in := net.AddInputBank("in", 1, SourceProps{Type: 0, Delay: 1})
	p := net.AddPopulation("p", 1, DefaultNeuron())
	net.Connect(in.Line(0), p.ID(0))
	net.MarkOutput(p.ID(0))
	mapping, err := Compile(net, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(mapping, EngineEvent, 1)
	_ = r.InjectLine(0)
	r.Run(4)
	u := UsageOf(r, true)
	if u.Ticks == 0 || u.SynapticEvents == 0 {
		t.Fatalf("usage = %+v", u)
	}
	rep := DefaultEnergyCoefficients().Evaluate(u)
	if rep.TotalPJ <= 0 {
		t.Fatal("no energy accounted")
	}
	conv := ConventionalEnergyCoefficients().Evaluate(u)
	if conv.TotalPJ <= rep.TotalPJ {
		t.Fatal("conventional baseline must cost more")
	}
}

func TestPublicTrainAndClassify(t *testing.T) {
	gen := NewDigitGenerator(8, 0.02, 0, 3)
	x, y := gen.Batch(300)
	m, err := TrainLinear(x, y, NumDigitClasses, TrainOptions{Epochs: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tern := m.Ternarize(1.3)
	net := NewNetwork()
	cls := BuildClassifier(net, tern, "d", ClassifierParams{Threshold: 4, Decay: 1})
	mapping, err := Compile(net, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(mapping, EngineEvent, 1)
	enc := NewBernoulliEncoder(0.5, 7)

	// Classify a handful of test images through the chip.
	xt, yt := gen.Batch(20)
	hits := 0
	for i := range xt {
		enc.Reset()
		counter := NewCounterDecoder(NumDigitClasses)
		for k := 0; k < 16; k++ {
			enc.Tick(xt[i], func(line int) {
				pos, neg := cls.LinesFor(line)
				_ = r.InjectLine(pos)
				_ = r.InjectLine(neg)
			})
			for _, e := range r.Step() {
				if c := cls.ClassOf(e.Neuron); c >= 0 {
					counter.Observe(c)
				}
			}
		}
		for _, e := range r.Drain(10) {
			if c := cls.ClassOf(e.Neuron); c >= 0 {
				counter.Observe(c)
			}
		}
		if counter.Argmax() == yt[i] {
			hits++
		}
	}
	if hits < 14 {
		t.Fatalf("spiking classifier got %d/20 on easy digits", hits)
	}
}

func TestPublicLogicalMatchesRunner(t *testing.T) {
	build := func() (*Network, *Population) {
		net := NewNetwork()
		in := net.AddInputBank("in", 1, SourceProps{Type: 0, Delay: 1})
		p := net.AddPopulation("p", 1, DefaultNeuron())
		net.Params(p.ID(0)).Threshold = 2
		net.Connect(in.Line(0), p.ID(0))
		net.MarkOutput(p.ID(0))
		return net, p
	}
	netL, _ := build()
	l := NewLogical(netL)
	_ = l.InjectLine(0)
	_ = l.Step()
	_ = l.InjectLine(0)
	lEvents := append([]Event(nil), l.Step()...)
	for i := 0; i < 4; i++ {
		lEvents = append(lEvents, l.Step()...)
	}

	netR, _ := build()
	mapping, err := Compile(netR, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(mapping, EngineEvent, 1)
	_ = r.InjectLine(0)
	rEvents := append([]Event(nil), r.Step()...)
	_ = r.InjectLine(0)
	rEvents = append(rEvents, r.Step()...)
	rEvents = append(rEvents, r.Drain(4)...)

	if len(lEvents) != len(rEvents) {
		t.Fatalf("logical %d events, runner %d", len(lEvents), len(rEvents))
	}
	for i := range lEvents {
		if lEvents[i] != rEvents[i] {
			t.Fatalf("event %d: %+v vs %+v", i, lEvents[i], rEvents[i])
		}
	}
}
